// Crash-isolated child execution: one row of a sweep runs in a forked child
// under a wall-clock watchdog, and its result record comes back over a pipe
// (docs/ROBUSTNESS.md §"Sweep supervision").
//
// Why fork (not threads): the failure modes the supervisor must survive —
// std::bad_alloc deep in a BDD apply, an OS OOM kill, a pathological row
// that never terminates, an outright abort — all take the whole process
// down. A child process turns each of them into a waitpid status the parent
// can classify, journal, and retry.
//
// Exit-status taxonomy (ChildStatus):
//   ok       complete result record received (even if it arrived only after
//            a SIGTERM wind-down — outcome.soft_timeout says so)
//   error    the row callback threw a typed error; the message is the payload
//   crash    the child died by signal (SIGABRT, SIGSEGV, ...) or exited
//            without delivering a record
//   timeout  the watchdog fired and the child never delivered: SIGTERM (the
//            child may wind down through the degradation ladder, see
//            core/budget.h request_global_expire) then, after a grace
//            period, SIGKILL
//   oom      killed by a SIGKILL the watchdog did not send (the kernel OOM
//            killer) or the callback died on std::bad_alloc
//
// The pipe protocol is length-prefixed and CRC-guarded, so a child that dies
// mid-write is detected as "no record" rather than a half-parsed one.
//
// Fork-safety contract: call run_in_child from a single-threaded parent (the
// bench harness qualifies: rows run sequentially from main). The child never
// returns — it runs the callback, writes the record, and _exit()s, skipping
// atexit handlers and static destructors.
#pragma once

#include <functional>
#include <string>

namespace mfd::super {

enum class ChildStatus { kOk, kError, kCrash, kTimeout, kOom };

const char* child_status_name(ChildStatus s);

struct ChildLimits {
  /// Wall-clock watchdog per attempt; 0 disables it.
  double watchdog_ms = 0.0;
  /// SIGTERM -> SIGKILL escalation gap: how long a winding-down child gets
  /// to finish its degraded emission and verification.
  double grace_ms = 5000.0;
};

struct ChildOutcome {
  ChildStatus status = ChildStatus::kCrash;
  /// The child's result record (status ok) or error message (status error/oom).
  std::string payload;
  /// Human-readable classification detail (signal name, exit code, ...).
  std::string detail;
  /// The watchdog fired but the record still arrived before the SIGKILL
  /// escalation (the SIGTERM wind-down path worked).
  bool soft_timeout = false;
  double seconds = 0.0;
  int exit_code = -1;    ///< valid when the child exited
  int term_signal = 0;   ///< valid when the child was killed by a signal
};

/// Runs `fn` in a forked child and returns its classified outcome. The
/// string `fn` returns is piped back verbatim as `outcome.payload`. The
/// child installs a SIGTERM handler that requests a global budget wind-down
/// (request_global_expire) before running `fn`. Throws mfd::Error when the
/// fork/pipe machinery itself fails (not when the child does).
ChildOutcome run_in_child(const std::function<std::string()>& fn,
                          const ChildLimits& limits);

}  // namespace mfd::super
